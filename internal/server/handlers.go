package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// route is one entry of the routing table. Routes() and buildMux are
// derived from the same table, and the routes test asserts API.md
// documents every pattern — the table is the single source of truth.
type route struct {
	pattern string
	handler http.HandlerFunc
}

// routes returns the full routing table in registration order.
func (s *Server) routes() []route {
	return []route{
		{"POST /v1/simulate", s.handleSimulate},
		{"POST /v1/jobs", s.handleSubmit},
		{"GET /v1/jobs", s.handleListJobs},
		{"GET /v1/jobs/{id}", s.handleGetJob},
		{"DELETE /v1/jobs/{id}", s.handleCancelJob},
		{"POST /v1/traces", s.handleUploadTrace},
		{"GET /v1/traces/{id}", s.handleGetTrace},
		{"GET /v1/workloads", s.handleWorkloads},
		{"GET /metrics", s.handleMetrics},
		{"GET /healthz", s.handleHealthz},
		{"GET /readyz", s.handleReadyz},
	}
}

// Routes lists every route pattern the server registers, in
// registration order. API.md must document each one; the routes test
// enforces that.
func Routes() []string {
	var s Server
	pats := make([]string, 0, 9)
	for _, r := range s.routes() {
		pats = append(pats, r.pattern)
	}
	return pats
}

// buildMux assembles the instrumented mux from the routing table.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	for _, r := range s.routes() {
		mux.Handle(r.pattern, s.instrument(r.pattern, r.handler))
	}
	return mux
}

// retryAfterSec is the Retry-After hint on 429/503 responses: with a
// bounded queue draining at simulation speed, one second is the right
// order of magnitude for a slot to open.
const retryAfterSec = 1

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError writes a typed error response.
func writeError(w http.ResponseWriter, status int, info ErrorInfo) {
	if info.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(info.RetryAfterSec))
	}
	writeJSON(w, status, ErrorResponse{Error: info})
}

// admit validates, creates and enqueues a job, mapping queue
// conditions to the documented status codes. Returns nil after having
// written an error response. async selects the fidelity default for
// requests that leave it empty: async jobs run sampled when the spec is
// compatible (they are the bulk-sweep path where throughput matters),
// synchronous ones run full.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, async bool) *job {
	if s.draining() {
		writeError(w, http.StatusServiceUnavailable, ErrorInfo{
			Code: CodeShuttingDown, Message: "server is draining", RetryAfterSec: retryAfterSec})
		return nil
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorInfo{Code: CodeInvalidRequest, Message: err.Error()})
		return nil
	}
	spec, prog, errInfo := req.validate()
	if errInfo != nil {
		writeError(w, http.StatusBadRequest, *errInfo)
		return nil
	}
	if req.TraceID != "" {
		// Resolve the id against the upload store now, so queue slots are
		// never spent on jobs that cannot run.
		f := s.traces.get(req.TraceID)
		if f == nil {
			writeError(w, http.StatusBadRequest, ErrorInfo{Code: CodeUnknownTrace, Field: "trace_id",
				Message: "no such trace (upload it with POST /v1/traces): " + req.TraceID})
			return nil
		}
		if spec.CPUs == 0 {
			spec.CPUs = f.NumCPUs()
		}
		if n := f.NumCPUs(); n > spec.CPUs || spec.CPUs > maxCPUs {
			writeError(w, http.StatusBadRequest, ErrorInfo{Code: CodeInvalidRequest, Field: "cpus",
				Message: fmt.Sprintf("trace carries %d CPU streams; cpus must be %d-%d", n, n, maxCPUs)})
			return nil
		}
		spec.Trace = harness.NewTraceWorkload("trace:"+shortTraceID(req.TraceID), f)
	}
	if req.Fidelity == "" && async && !req.Attr && harness.CanSample(spec) {
		spec.Sampled = true
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	j := s.store.create(req, spec, prog, timeout)
	if err := s.queue.submit(j); err != nil {
		// Rejected at admission: the job was never accepted, so it
		// leaves no trace in the store.
		s.store.remove(j.id)
		switch err {
		case errShuttingDown:
			writeError(w, http.StatusServiceUnavailable, ErrorInfo{
				Code: CodeShuttingDown, Message: "server is draining", RetryAfterSec: retryAfterSec})
		default:
			writeError(w, http.StatusTooManyRequests, ErrorInfo{
				Code:          CodeQueueFull,
				Message:       "admission queue is full; retry after a backoff",
				RetryAfterSec: retryAfterSec})
		}
		return nil
	}
	s.logf("job %s accepted: %s", j.id, describe(j.req))
	return j
}

// maxBodyBytes bounds request bodies; custom programs are text and
// comfortably fit.
const maxBodyBytes = 1 << 20

// handleSimulate is POST /v1/simulate: synchronous submission. The job
// goes through the same bounded queue as async submissions (so
// backpressure applies identically), and the handler blocks until it
// finishes or the client gives up — a disconnected client cancels the
// job.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	j := s.admit(w, r, false)
	if j == nil {
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		j.requestCancel("client disconnected")
		<-j.done
	}
	st := j.status(false)
	switch st.State {
	case StateDone:
		writeJSON(w, http.StatusOK, st.Result)
	case StateCanceled:
		status := http.StatusConflict
		if st.Error != nil && st.Error.Code == CodeTimeout {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, *st.Error)
	default: // StateFailed
		writeError(w, http.StatusUnprocessableEntity, *st.Error)
	}
}

// handleSubmit is POST /v1/jobs: async submission, 202 + job id.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	j := s.admit(w, r, true)
	if j == nil {
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// handleListJobs is GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobList{Jobs: s.store.list()})
}

// handleGetJob is GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrorInfo{Code: CodeNotFound,
			Message: "no such job: " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleCancelJob is DELETE /v1/jobs/{id}: cancel a queued or running
// job. Finished jobs are left untouched (idempotent; the response
// reports the state the job is now in).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrorInfo{Code: CodeNotFound,
			Message: "no such job: " + r.PathValue("id")})
		return
	}
	prev := j.requestCancel("canceled by DELETE /v1/jobs/" + j.id)
	if prev == StateRunning {
		// Wait briefly so the common case (cancellation lands at the
		// next nest boundary) reports the terminal state.
		select {
		case <-j.done:
		case <-time.After(2 * time.Second):
		}
	}
	s.logf("job %s cancel requested (was %s)", j.id, prev)
	writeJSON(w, http.StatusOK, j.status(false))
}

// handleWorkloads is GET /v1/workloads: the request vocabulary.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	resp := WorkloadsResponse{
		Machines:   []string{string(harness.BaseMachine), string(harness.AlphaMachine)},
		Topologies: arch.TopologyNames(),
	}
	for _, v := range harness.Variants() {
		resp.Variants = append(resp.Variants, string(v))
	}
	for _, m := range workloads.Registry() {
		resp.Workloads = append(resp.Workloads, WorkloadInfo{
			Name:        m.Name,
			Description: m.Traits,
			PaperDataMB: m.PaperDataMB,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics is GET /metrics: the Prometheus text exposition of
// queue, scheduler-cache and per-endpoint latency metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w) //nolint:errcheck // client gone; nothing to do
}

// handleHealthz is GET /healthz: liveness (the process serves HTTP).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n")) //nolint:errcheck
}

// handleReadyz is GET /readyz: readiness; 503 once draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ready\n")) //nolint:errcheck
}

// describe renders a request for log lines.
func describe(req JobRequest) string {
	name := req.Workload
	if name == "" && req.TraceID != "" {
		name = "trace:" + shortTraceID(req.TraceID)
	}
	if name == "" {
		name = "<custom program>"
	}
	v := req.Variant
	if v == "" {
		v = string(harness.PageColoring)
	}
	if n := len(req.CoRunners); n > 0 {
		return fmt.Sprintf("%s/%s (+%d co-runners)", name, v, n)
	}
	return name + "/" + v
}
