package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// TestAPIDocCoversEveryRoute keeps API.md and the routing table in
// sync: every registered pattern must appear verbatim in the doc's
// route table, and the doc must not list routes the server dropped.
func TestAPIDocCoversEveryRoute(t *testing.T) {
	doc, err := os.ReadFile("../../API.md")
	if err != nil {
		t.Fatalf("API.md missing: %v", err)
	}
	text := string(doc)
	for _, pat := range Routes() {
		// Patterns render in the doc as "`METHOD /path`".
		method, path, _ := strings.Cut(pat, " ")
		want := "`" + method + " " + path + "`"
		if !strings.Contains(text, want) {
			t.Errorf("API.md does not document route %q (looked for %s)", pat, want)
		}
	}
	// The error-code table must cover every code the API can emit.
	for _, code := range []string{
		CodeInvalidRequest, CodeUnknownWorkload, CodeBadProgram,
		CodeBadCoSchedule, CodeBadIsolation, CodeNotFound, CodeQueueFull,
		CodeShuttingDown, CodeTimeout, CodeCanceled, CodeSimFailed,
		CodeOutOfMemory, CodeInternal,
	} {
		if !strings.Contains(text, "`"+code+"`") {
			t.Errorf("API.md does not document error code %q", code)
		}
	}
}

// TestRoutesMatchMux asserts Routes() reflects what the mux actually
// serves: every pattern resolves to a handler (no 404/405 from the
// mux itself for the documented method+path shape).
func TestRoutesMatchMux(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 1})
	defer s.Shutdown(t.Context())
	for _, pat := range Routes() {
		method, path, ok := strings.Cut(pat, " ")
		if !ok {
			t.Fatalf("pattern %q has no method", pat)
		}
		path = strings.ReplaceAll(path, "{id}", "j000000")
		r := httptest.NewRequest(method, path, nil)
		_, matched := s.mux.Handler(r)
		if matched == "" {
			t.Errorf("mux does not serve documented route %q", pat)
		}
	}
	// And the inverse guard: an undocumented path 404s.
	r := httptest.NewRequest(http.MethodGet, "/v1/nope", nil)
	if _, matched := s.mux.Handler(r); matched != "" {
		t.Errorf("mux serves unregistered path /v1/nope via %q", matched)
	}
}
