package server

import (
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/trace"
)

// maxTraceBytes bounds one uploaded trace's encoded size. The binary
// format is varint-delta compressed, so 8 MiB of encoding is tens of
// millions of references — far beyond what one synchronous simulation
// budget can drain.
const maxTraceBytes = 8 << 20

// maxTraceStoreBytes bounds the store's total resident encoding; past
// it the least-recently-used traces are evicted. Eviction only drops
// the store's reference — jobs hold their own *trace.File pointer, so
// a running or queued job is never broken by eviction (the id just
// stops resolving for new submissions).
const maxTraceStoreBytes = 64 << 20

// traceStore is the content-addressed upload registry: a trace's id is
// the hex SHA-256 of its canonical serialization (trace.File.Hash), so
// re-uploading identical bytes is idempotent and two different streams
// can never share an id. Recency is a simple counter-stamped LRU —
// uploads are rare and small next to simulations.
type traceStore struct {
	mu      sync.Mutex
	entries map[string]*traceEntry // guarded by mu
	clock   uint64                 // guarded by mu
	total   int64                  // guarded by mu; sum of entry sizes
}

type traceEntry struct {
	f    *trace.File
	size int64
	used uint64 // last-use stamp, from traceStore.clock
}

func newTraceStore() *traceStore {
	return &traceStore{entries: make(map[string]*traceEntry)}
}

// errTraceTooLarge reports an upload beyond maxTraceBytes.
var errTraceTooLarge = errors.New("server: trace exceeds the size limit")

// add decodes and registers an uploaded trace, returning its
// content-address id. Identical re-uploads return the same id without
// growing the store.
func (ts *traceStore) add(data []byte) (string, *trace.File, error) {
	if len(data) > maxTraceBytes {
		return "", nil, errTraceTooLarge
	}
	f, err := trace.DecodeBytes(data)
	if err != nil {
		return "", nil, err
	}
	id := f.Hash()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.clock++
	if e, ok := ts.entries[id]; ok {
		e.used = ts.clock
		return id, e.f, nil
	}
	ts.entries[id] = &traceEntry{f: f, size: int64(len(data)), used: ts.clock}
	ts.total += int64(len(data))
	for ts.total > maxTraceStoreBytes && len(ts.entries) > 1 {
		ts.evictOldestLocked(id)
	}
	return id, f, nil
}

// evictOldestLocked drops the least-recently-used entry other than
// keep. Caller holds ts.mu.
func (ts *traceStore) evictOldestLocked(keep string) {
	var victim string
	var oldest uint64
	for id, e := range ts.entries {
		if id == keep {
			continue
		}
		if victim == "" || e.used < oldest {
			victim, oldest = id, e.used
		}
	}
	if victim == "" {
		return
	}
	ts.total -= ts.entries[victim].size
	delete(ts.entries, victim)
}

// get resolves an id, bumping its recency. Returns nil when unknown
// (never uploaded, or evicted).
func (ts *traceStore) get(id string) *trace.File {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e, ok := ts.entries[id]
	if !ok {
		return nil
	}
	ts.clock++
	e.used = ts.clock
	return e.f
}

// bytes reports the store's resident encoded size (for metrics).
func (ts *traceStore) bytes() int64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.total
}

// TraceInfo is the body of a successful trace upload (201) and of
// GET /v1/traces/{id}: the trace's content address and shape.
type TraceInfo struct {
	// ID is the trace's content address: the hex SHA-256 of its
	// canonical binary serialization. Pass it as a job's trace_id.
	ID string `json:"id"`
	// CPUs is the number of per-CPU reference streams.
	CPUs int `json:"cpus"`
	// Refs is the total reference count across all streams.
	Refs uint64 `json:"refs"`
	// Bytes is the encoded size.
	Bytes int `json:"bytes"`
}

func traceInfoOf(id string, f *trace.File) TraceInfo {
	return TraceInfo{ID: id, CPUs: f.NumCPUs(), Refs: f.TotalRefs(), Bytes: f.EncodedSize()}
}

// handleUploadTrace is POST /v1/traces: the body is the raw binary
// trace format (see DESIGN.md §15; produce it with cmd/traceconv).
// Responds 201 with the trace's content-address id; re-uploading the
// same bytes is idempotent and returns the same id.
func (s *Server) handleUploadTrace(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBytes+1))
	if err != nil || len(data) > maxTraceBytes {
		writeError(w, http.StatusRequestEntityTooLarge, ErrorInfo{Code: CodeTraceTooLarge,
			Message: "trace exceeds the size limit"})
		return
	}
	id, f, err := s.traces.add(data)
	if err != nil {
		if errors.Is(err, errTraceTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorInfo{Code: CodeTraceTooLarge,
				Message: "trace exceeds the size limit"})
			return
		}
		writeError(w, http.StatusBadRequest, ErrorInfo{Code: CodeBadTrace, Message: err.Error()})
		return
	}
	s.logf("trace %s uploaded: %d cpus, %d refs, %d bytes", shortTraceID(id), f.NumCPUs(), f.TotalRefs(), len(data))
	w.Header().Set("Location", "/v1/traces/"+id)
	writeJSON(w, http.StatusCreated, traceInfoOf(id, f))
}

// handleGetTrace is GET /v1/traces/{id}: metadata for an uploaded
// trace (404 when the id is unknown or was evicted).
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f := s.traces.get(id)
	if f == nil {
		writeError(w, http.StatusNotFound, ErrorInfo{Code: CodeNotFound,
			Message: "no such trace: " + id})
		return
	}
	writeJSON(w, http.StatusOK, traceInfoOf(id, f))
}

// shortTraceID abbreviates a content-address id for labels and logs.
func shortTraceID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
