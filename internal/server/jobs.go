package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/ir"
)

// job is the server-side record of one submitted simulation. The wire
// view (JobStatus) is derived under the store's lock; the run loop
// mutates state through the store so readers never see a torn record.
type job struct {
	id        string
	req       JobRequest
	spec      harness.Spec
	prog      *ir.Program // non-nil for custom-program requests
	timeout   time.Duration
	submitted time.Time

	// mu guards the mutable fields below. done is closed exactly once,
	// when the job reaches a terminal state, and is read without the
	// lock (the channel close is its own synchronization).
	mu       sync.Mutex
	state    JobState   // guarded by mu
	started  time.Time  // guarded by mu
	finished time.Time  // guarded by mu
	result   *JobResult // guarded by mu
	errInfo  *ErrorInfo // guarded by mu
	// cancel aborts the running simulation's context. Set while the job
	// is running; calling it after completion is a no-op. guarded by mu
	cancel context.CancelFunc
	// canceled is latched by Cancel so a queued job is skipped when a
	// worker eventually dequeues it. guarded by mu
	canceled bool
	done     chan struct{}
}

// status snapshots the wire view.
func (j *job) status(withRequest bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Submitted: j.submitted,
		Result:    j.result,
		Error:     j.errInfo,
	}
	if withRequest {
		req := j.req
		st.Request = &req
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// markRunning transitions queued → running, or reports false when the
// job was canceled while queued (the worker then skips it).
func (j *job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish moves the job to a terminal state and wakes waiters. Repeat
// calls are ignored (e.g. a cancel racing completion).
func (j *job) finish(state JobState, res *JobResult, errInfo *ErrorInfo) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	j.errInfo = errInfo
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
}

// requestCancel marks the job canceled. Queued jobs terminate
// immediately; running jobs get their context canceled and terminate
// when the simulator hits the next nest boundary. Returns the state
// observed at the time of the call.
func (j *job) requestCancel(reason string) JobState {
	j.mu.Lock()
	state := j.state
	j.canceled = true
	cancel := j.cancel
	j.mu.Unlock()

	switch state {
	case StateQueued:
		j.finish(StateCanceled, nil, &ErrorInfo{Code: CodeCanceled, Message: reason})
	case StateRunning:
		if cancel != nil {
			cancel()
		}
	}
	return state
}

// store is the in-memory job registry. Jobs are never evicted: the
// daemon is an experiment service, and a day of submissions is small
// next to one simulation's footprint. (Eviction would go here.)
type store struct {
	mu   sync.Mutex
	seq  uint64          // guarded by mu
	jobs map[string]*job // guarded by mu
}

func newStore() *store {
	return &store{jobs: make(map[string]*job)}
}

// create registers a new job in the queued state.
func (st *store) create(req JobRequest, spec harness.Spec, prog *ir.Program, timeout time.Duration) *job {
	st.mu.Lock()
	st.seq++
	id := fmt.Sprintf("j%06d", st.seq)
	j := &job{
		id:        id,
		req:       req,
		spec:      spec,
		prog:      prog,
		timeout:   timeout,
		submitted: time.Now(),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	st.jobs[id] = j
	st.mu.Unlock()
	return j
}

// get returns the job with the given id, or nil.
func (st *store) get(id string) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.jobs[id]
}

// remove deletes a job record (rejected submissions only — accepted
// jobs are never removed).
func (st *store) remove(id string) {
	st.mu.Lock()
	delete(st.jobs, id)
	st.mu.Unlock()
}

// list snapshots all jobs' statuses, ordered by id (= submission
// order, since ids are sequential).
func (st *store) list() []JobStatus {
	st.mu.Lock()
	jobs := make([]*job, 0, len(st.jobs))
	for _, j := range st.jobs {
		jobs = append(jobs, j)
	}
	st.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	return out
}
