package server

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// Config sizes a Server.
type Config struct {
	// Workers is the simulation worker-pool size; <= 0 selects
	// runtime.GOMAXPROCS(0). This bounds concurrent simulations, not
	// concurrent HTTP connections.
	Workers int
	// QueueCapacity bounds the admission queue; <= 0 selects
	// DefaultQueueCapacity. A full queue rejects new submissions with
	// 429 (newest-first shedding: accepted jobs are never dropped).
	QueueCapacity int
	// DefaultTimeout caps a job's simulation time when the request
	// carries no timeout_ms; <= 0 selects DefaultJobTimeout.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts; <= 0 selects
	// DefaultMaxTimeout.
	MaxTimeout time.Duration
	// Log receives request and lifecycle lines; nil discards them.
	Log *log.Logger
}

// Defaults for Config's zero values.
const (
	DefaultQueueCapacity = 64
	DefaultJobTimeout    = 60 * time.Second
	DefaultMaxTimeout    = 10 * time.Minute
)

// Server is the cdpcd daemon: a bounded admission queue in front of
// the memoizing parallel scheduler, plus the HTTP surface that feeds
// it. Construct with New, mount Handler on an http.Server, and call
// Shutdown to drain.
type Server struct {
	cfg    Config
	sched  *harness.Scheduler
	store  *store
	traces *traceStore
	queue  *queue
	reg    *obs.Registry
	mux    *http.ServeMux

	// baseCtx parents every job context; canceling it (Shutdown's last
	// resort) aborts running simulations at their next nest boundary.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	// ready flips to false when Shutdown begins; readyz and submission
	// handlers consult it.
	ready     chan struct{} // closed ⇒ draining
	drainOnce sync.Once
}

// New constructs a Server. The scheduler — worker-pool sizing, memo
// cache and compiled-program cache — is shared across all requests for
// the server's lifetime, which is what makes repeated submissions of
// the same spec near-free.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = DefaultQueueCapacity
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultJobTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}

	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		sched:      harness.NewScheduler(cfg.Workers),
		store:      newStore(),
		traces:     newTraceStore(),
		reg:        obs.NewRegistry(),
		baseCtx:    baseCtx,
		cancelBase: cancel,
		ready:      make(chan struct{}),
	}
	s.queue = newQueue(baseCtx, s.sched, cfg.QueueCapacity, cfg.Workers, s.reg)
	s.reg.Gauge("cdpcd_scheduler_cache_hits_total", "memo-cache hits (incl. coalesced runs)", func() float64 {
		h, _ := s.sched.CacheStats()
		return float64(h)
	})
	s.reg.Gauge("cdpcd_scheduler_cache_misses_total", "memo-cache misses (simulations executed)", func() float64 {
		_, m := s.sched.CacheStats()
		return float64(m)
	})
	s.reg.Gauge("cdpcd_scheduler_cache_hit_rate", "hits / (hits+misses) since start", func() float64 {
		h, m := s.sched.CacheStats()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	s.reg.Gauge("cdpcd_trace_store_bytes", "resident encoded size of uploaded traces", func() float64 {
		return float64(s.traces.bytes())
	})
	s.mux = s.buildMux()
	return s
}

// Scheduler exposes the shared execution engine (tests and the daemon
// use it for cache statistics).
func (s *Server) Scheduler() *harness.Scheduler { return s.sched }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the fully instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.ready:
		return true
	default:
		return false
	}
}

// Shutdown drains the server: admission closes immediately (readyz
// goes 503, submissions get shutting_down), accepted jobs — queued and
// running — are given until ctx's deadline to finish, and when the
// deadline expires every remaining simulation is canceled at its next
// nest boundary and marked canceled. Returns nil on a complete drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.ready) })
	s.queue.close()
	err := s.queue.wait(ctx)
	if err != nil {
		// Deadline expired: abort in-flight simulations and mark
		// whatever is left canceled so no job is stuck non-terminal.
		s.cancelBase()
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if werr := s.queue.wait(drainCtx); werr != nil {
			return fmt.Errorf("server: drain deadline exceeded and workers still busy: %w", werr)
		}
		return err
	}
	s.cancelBase()
	return nil
}

// logf writes to the configured logger, if any.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}
