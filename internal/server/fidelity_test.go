package server

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestAsyncJobDefaultsSampled pins the fidelity default split: an async
// submission with no fidelity field runs sampled (the bulk-sweep path
// where throughput matters), while the same body on the synchronous
// endpoint runs full.
func TestAsyncJobDefaultsSampled(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})

	id := ts.submit(t, fastReq())
	st := ts.await(t, id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state %s, want done (err: %+v)", st.State, st.Error)
	}
	if st.Result.Fidelity != sim.FidelitySampled {
		t.Errorf("async default fidelity %q, want %q", st.Result.Fidelity, sim.FidelitySampled)
	}
	if st.Result.WallCycles == 0 {
		t.Error("sampled job produced an empty result")
	}

	var res JobResult
	if code := ts.do(t, "POST", "/v1/simulate", fastReq(), &res); code != http.StatusOK {
		t.Fatalf("sync status %d", code)
	}
	if res.Fidelity != sim.FidelityFull {
		t.Errorf("sync default fidelity %q, want %q", res.Fidelity, sim.FidelityFull)
	}
}

// TestAsyncFullOptOut: an explicit "full" on an async job suppresses
// the sampled default, and the two fidelities are distinct memo
// entries (the full run is not served from the sampled run's cache).
func TestAsyncFullOptOut(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})

	req := fastReq()
	req.Fidelity = "full"
	id := ts.submit(t, req)
	st := ts.await(t, id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state %s, want done (err: %+v)", st.State, st.Error)
	}
	if st.Result.Fidelity != sim.FidelityFull {
		t.Errorf("explicit full ran as %q", st.Result.Fidelity)
	}
	if st.Result.Cached {
		t.Error("first full run reported cached")
	}

	// A sampled job of the same spec must simulate fresh, not hit the
	// full run's memo entry.
	sampledReq := fastReq()
	sampledReq.Fidelity = "sampled"
	id = ts.submit(t, sampledReq)
	st = ts.await(t, id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("sampled state %s, want done (err: %+v)", st.State, st.Error)
	}
	if st.Result.Fidelity != sim.FidelitySampled {
		t.Errorf("explicit sampled ran as %q", st.Result.Fidelity)
	}
	if st.Result.Cached {
		t.Error("sampled run was served from the full run's cache entry")
	}
}

// TestAsyncIncompatibleSpecDefaultsFull: when the sampled default would
// not apply (attribution, co-scheduling, dynamic recoloring), an empty
// fidelity silently runs full — only an explicit "sampled" is an error.
func TestAsyncIncompatibleSpecDefaultsFull(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	req := fastReq()
	req.Variant = "dynamic-recoloring"
	id := ts.submit(t, req)
	st := ts.await(t, id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state %s, want done (err: %+v)", st.State, st.Error)
	}
	if st.Result.Fidelity != sim.FidelityFull {
		t.Errorf("dynamic-recoloring job ran as %q, want %q", st.Result.Fidelity, sim.FidelityFull)
	}
}

// TestBadFidelityRejections covers every bad_fidelity shape: unknown
// values, and explicit "sampled" on specs that need the full reference
// trace.
func TestBadFidelityRejections(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	sampled := func(mut func(*JobRequest)) JobRequest {
		req := fastReq()
		req.Fidelity = "sampled"
		mut(&req)
		return req
	}
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"unknown value", sampled(func(r *JobRequest) { r.Fidelity = "approximate" })},
		{"sampled with attr", sampled(func(r *JobRequest) { r.Attr = true })},
		{"sampled with co_runners", sampled(func(r *JobRequest) { r.CoRunners = []CoRunnerRequest{{}} })},
		{"sampled with dynamic recoloring", sampled(func(r *JobRequest) { r.Variant = "dynamic-recoloring" })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			code := ts.do(t, "POST", "/v1/jobs", tc.req, &er)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if er.Error.Code != CodeBadFidelity {
				t.Fatalf("code %q, want %q (%s)", er.Error.Code, CodeBadFidelity, er.Error.Message)
			}
			if er.Error.Field != "fidelity" {
				t.Errorf("field %q, want fidelity", er.Error.Field)
			}
		})
	}
}
