package server

import (
	"net/http"
	"testing"

	"repro/internal/harness"
	"repro/internal/memory"
	"repro/internal/obs"
)

// isoReq co-schedules two tomcatv instances under color partitioning.
func isoReq() JobRequest {
	req := multiReq()
	req.Isolate = true
	return req
}

func TestIsolationValidation(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	co := []CoRunnerRequest{{}}
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"isolate without co-runners", JobRequest{Workload: "tomcatv", Isolate: true}},
		{"domain without co-runners", JobRequest{Workload: "tomcatv", IsolationDomain: 1}},
		{"primary domain without isolate", JobRequest{Workload: "tomcatv", CoRunners: co, IsolationDomain: 1}},
		{"co-runner domain without isolate", JobRequest{Workload: "tomcatv", CoRunners: []CoRunnerRequest{{IsolationDomain: 1}}}},
		{"primary domain out of range", JobRequest{Workload: "tomcatv", CoRunners: co, Isolate: true, IsolationDomain: 3}},
		{"negative primary domain", JobRequest{Workload: "tomcatv", CoRunners: co, Isolate: true, IsolationDomain: -1}},
		{"co-runner domain out of range", JobRequest{Workload: "tomcatv", CoRunners: []CoRunnerRequest{{IsolationDomain: 5}}, Isolate: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			code := ts.do(t, "POST", "/v1/jobs", tc.req, &er)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if er.Error.Code != CodeBadIsolation {
				t.Fatalf("code %q, want %q (%s)", er.Error.Code, CodeBadIsolation, er.Error.Message)
			}
		})
	}

	// Valid shapes must pass validation (shared-domain labels included).
	ok := isoReq()
	ok.IsolationDomain = 1
	ok.CoRunners = []CoRunnerRequest{{IsolationDomain: 1}}
	if _, _, errInfo := ok.validate(); errInfo != nil {
		t.Fatalf("shared-domain request rejected: %+v", errInfo)
	}
}

func TestIsolatedJob(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})

	// The unpartitioned baseline first: same mix, no isolation.
	var base JobResult
	if code := ts.do(t, "POST", "/v1/simulate", multiReq(), &base); code != http.StatusOK {
		t.Fatalf("baseline simulate: status %d", code)
	}
	if base.Isolated {
		t.Error("unpartitioned job reports isolated")
	}

	var res JobResult
	if code := ts.do(t, "POST", "/v1/simulate", isoReq(), &res); code != http.StatusOK {
		t.Fatalf("isolated simulate: status %d (%+v)", code, res)
	}
	if res.Cached {
		t.Error("isolated mix claimed the unpartitioned cache entry")
	}
	if !res.Isolated {
		t.Error("isolated job does not report isolated")
	}
	if res.CrossDomainConflicts != 0 {
		t.Errorf("isolated job reports %d cross-domain conflicts, want 0", res.CrossDomainConflicts)
	}
	if len(res.Processes) != 2 {
		t.Fatalf("%d per-process results, want 2", len(res.Processes))
	}
	for i, p := range res.Processes {
		if !p.Isolated {
			t.Errorf("process %d does not report isolated", i+1)
		}
		if p.CrossDomainConflicts != 0 {
			t.Errorf("process %d reports %d cross-domain conflicts, want 0", i+1, p.CrossDomainConflicts)
		}
	}

	// A repeat is its own memo entry, not the baseline's.
	var again JobResult
	if code := ts.do(t, "POST", "/v1/simulate", isoReq(), &again); code != http.StatusOK {
		t.Fatalf("repeat: status %d", code)
	}
	if !again.Cached {
		t.Error("identical isolated mix not served from cache")
	}
	if again.WallCycles != res.WallCycles {
		t.Errorf("cached isolated result differs: %d vs %d cycles", again.WallCycles, res.WallCycles)
	}
}

// TestPartitionExhaustionMaps422 pins the error path a dry partition
// takes through the daemon: PartitionExhaustedError unwraps to
// memory.ErrOutOfMemory, so finishErr must classify it as the typed
// out_of_memory code (which handleSimulate serves as 422, see
// TestOutOfMemoryTyped) rather than a generic sim_failed.
func TestPartitionExhaustionMaps422(t *testing.T) {
	reg := obs.NewRegistry()
	q := &queue{
		failed:   reg.Counter("test_failed", ""),
		canceled: reg.Counter("test_canceled", ""),
	}
	j := newStore().create(JobRequest{}, harness.Spec{}, nil, 0)
	q.finishErr(j, &memory.PartitionExhaustedError{Pid: 2, Domain: 1, Colors: []int{0, 1}})
	st := j.status(false)
	if st.State != StateFailed {
		t.Fatalf("state %q, want %q", st.State, StateFailed)
	}
	if st.Error == nil || st.Error.Code != CodeOutOfMemory {
		t.Fatalf("error %+v, want code %q", st.Error, CodeOutOfMemory)
	}
}
