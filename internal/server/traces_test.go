package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/trace"
)

// testTraceBytes encodes a small 2-CPU trace: each CPU walks its own
// few pages with some revisits, enough for a sub-second simulation.
func testTraceBytes(t *testing.T) []byte {
	t.Helper()
	enc, err := trace.NewEncoder(2)
	if err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < 2; cpu++ {
		base := uint64(cpu) << 20
		for i := 0; i < 2000; i++ {
			r := trace.Ref{Kind: trace.Read, VAddr: base + uint64(i%7)*4096 + uint64(i)%512*8, Size: 8}
			if i%5 == 0 {
				r.Kind = trace.Write
			}
			if err := enc.Add(cpu, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return enc.File().AppendBinary(nil)
}

// postRaw sends a raw (non-JSON) body and decodes the JSON response.
func (ts *testServer) postRaw(t *testing.T, path string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(ts.url(path), "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestTraceUploadAndSimulate covers the whole trace-job lifecycle:
// upload (content-addressed, idempotent), metadata fetch, synchronous
// simulation, and the memo-cache hit on resubmission.
func TestTraceUploadAndSimulate(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2, QueueCapacity: 8})
	data := testTraceBytes(t)

	var info TraceInfo
	if code := ts.postRaw(t, "/v1/traces", data, &info); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	if info.CPUs != 2 || info.Refs != 4000 || info.Bytes != len(data) {
		t.Fatalf("upload metadata %+v", info)
	}
	var again TraceInfo
	if code := ts.postRaw(t, "/v1/traces", data, &again); code != http.StatusCreated || again.ID != info.ID {
		t.Fatalf("re-upload not idempotent: %d %+v", code, again)
	}

	var got TraceInfo
	if code := ts.do(t, "GET", "/v1/traces/"+info.ID, nil, &got); code != http.StatusOK || got.ID != info.ID {
		t.Fatalf("GET trace: %d %+v", code, got)
	}
	if code := ts.do(t, "GET", "/v1/traces/deadbeef", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown trace: status %d", code)
	}

	var res JobResult
	if code := ts.do(t, "POST", "/v1/simulate", JobRequest{TraceID: info.ID}, &res); code != http.StatusOK {
		t.Fatalf("simulate: status %d", code)
	}
	if res.CPUs != 2 || res.Fidelity != "full" || res.Policy != "page-coloring" || res.Cached {
		t.Fatalf("trace result %+v", res)
	}
	if res.L2Misses == 0 || res.PageFaults == 0 {
		t.Fatalf("trace simulated nothing: %+v", res)
	}

	var hit JobResult
	if code := ts.do(t, "POST", "/v1/simulate", JobRequest{TraceID: info.ID}, &hit); code != http.StatusOK {
		t.Fatalf("resubmit: status %d", code)
	}
	if !hit.Cached || hit.L2Misses != res.L2Misses {
		t.Fatalf("resubmission not served from the memo cache: %+v", hit)
	}

	// A different variant is a different memo slot but the same trace.
	var ft JobResult
	if code := ts.do(t, "POST", "/v1/simulate", JobRequest{TraceID: info.ID, Variant: "first-touch"}, &ft); code != http.StatusOK {
		t.Fatalf("first-touch: status %d", code)
	}
	if ft.Cached || ft.Policy != "first-touch" {
		t.Fatalf("variant result %+v", ft)
	}
}

// TestTraceJobValidation is the rejection table for trace-job shapes.
func TestTraceJobValidation(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 4})
	var info TraceInfo
	if code := ts.postRaw(t, "/v1/traces", testTraceBytes(t), &info); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	cases := []struct {
		name string
		req  JobRequest
		code string
	}{
		{"unknown id", JobRequest{TraceID: "0000"}, CodeUnknownTrace},
		{"with workload", JobRequest{TraceID: info.ID, Workload: "tomcatv"}, CodeInvalidRequest},
		{"with program", JobRequest{TraceID: info.ID, Program: "x"}, CodeInvalidRequest},
		{"with co-runners", JobRequest{TraceID: info.ID, CoRunners: []CoRunnerRequest{{}}}, CodeBadCoSchedule},
		{"with prefetch", JobRequest{TraceID: info.ID, Prefetch: true}, CodeInvalidRequest},
		{"sampled", JobRequest{TraceID: info.ID, Fidelity: "sampled"}, CodeBadFidelity},
		{"layout variant", JobRequest{TraceID: info.ID, Variant: "cdpc-touch"}, CodeInvalidRequest},
		{"too few cpus", JobRequest{TraceID: info.ID, CPUs: 1}, CodeInvalidRequest},
	}
	for _, tc := range cases {
		var er ErrorResponse
		code := ts.do(t, "POST", "/v1/simulate", tc.req, &er)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
			continue
		}
		if er.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, er.Error.Code, tc.code)
		}
	}

	// Async submissions of a trace job must default to full fidelity,
	// not sampled.
	id := ts.submit(t, JobRequest{TraceID: info.ID, Variant: "bin-hopping"})
	st := ts.await(t, id, 30*time.Second)
	if st.State != StateDone || st.Result.Fidelity != "full" {
		t.Fatalf("async trace job: %+v", st)
	}

	if code := ts.postRaw(t, "/v1/traces", []byte("not a trace"), nil); code != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d, want 400", code)
	}
	big := make([]byte, maxTraceBytes+1)
	if code := ts.postRaw(t, "/v1/traces", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", code)
	}
}
