// Package server implements cdpcd, the simulation-as-a-service
// daemon: an HTTP/JSON surface (API.md is the contract; the routes
// test keeps the two in sync) over the harness.Scheduler, so that
// many clients share one worker pool, one Spec-keyed memo cache and
// one compiled-program cache.
//
// The shape of the service follows the economics of the simulator:
// a simulation is seconds of CPU while an HTTP request is free, so
// admission is bounded by an explicit queue sized independently of
// the worker pool. Load shedding is newest-first — a full queue
// rejects the incoming submission with 429 + Retry-After and an
// accepted job is never dropped. Shutdown drains: admission closes
// (readyz 503), accepted jobs get the drain deadline to finish, and
// only then are in-flight simulations canceled at their next
// loop-nest boundary. Requests that instrument a run (attr) or carry
// a custom program bypass the memo cache, the same rule the PR 2
// observability layer established.
//
// There is no paper section for this package — it is repository
// infrastructure in front of the §3 experiment harness, replacing
// one-shot cmd/experiments invocations for interactive use.
package server
