package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastReq is a spec small enough to simulate in tens of milliseconds.
func fastReq() JobRequest {
	return JobRequest{Workload: "tomcatv", CPUs: 1, Scale: 64}
}

// slowReq is a spec that runs long enough (~0.5s) to observe queued
// and running states deterministically.
func slowReq() JobRequest {
	return JobRequest{Workload: "tomcatv", CPUs: 16, Scale: 4}
}

// testServer wires a Server to an httptest listener.
type testServer struct {
	*Server
	http *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
		hs.Close()
	})
	return &testServer{Server: s, http: hs}
}

func (ts *testServer) url(path string) string { return ts.http.URL + path }

// do sends a JSON request and decodes the response body into out
// (when non-nil), returning the status code.
func (ts *testServer) do(t *testing.T, method, path string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, ts.url(path), rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// submit POSTs to /v1/jobs and returns the job id.
func (ts *testServer) submit(t *testing.T, req JobRequest) string {
	t.Helper()
	var st JobStatus
	if code := ts.do(t, "POST", "/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submit: unexpected status %+v", st)
	}
	return st.ID
}

// await polls a job until it reaches a terminal state.
func (ts *testServer) await(t *testing.T, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		if code := ts.do(t, "GET", "/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("get %s: status %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitState polls until the job reports the wanted state.
func (ts *testServer) awaitState(t *testing.T, id string, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st JobStatus
		ts.do(t, "GET", "/v1/jobs/"+id, nil, &st)
		if st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s after %s", id, st.State, want, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSyncSimulate(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	var res JobResult
	if code := ts.do(t, "POST", "/v1/simulate", fastReq(), &res); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.WallCycles == 0 || res.Policy != "page-coloring" || res.CPUs != 1 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Cached {
		t.Fatal("first run reported cached")
	}

	// Same spec again: memo cache must serve it.
	var again JobResult
	ts.do(t, "POST", "/v1/simulate", fastReq(), &again)
	if !again.Cached {
		t.Error("second identical run not served from cache")
	}
	if again.WallCycles != res.WallCycles {
		t.Errorf("cached result differs: %d vs %d cycles", again.WallCycles, res.WallCycles)
	}
	if hits, _ := ts.Scheduler().CacheStats(); hits == 0 {
		t.Error("scheduler reported no cache hits")
	}
}

func TestValidationErrors(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name     string
		req      JobRequest
		wantCode string
	}{
		{"neither workload nor program", JobRequest{}, CodeInvalidRequest},
		{"both workload and program", JobRequest{Workload: "tomcatv", Program: "x"}, CodeInvalidRequest},
		{"cpus out of range", JobRequest{Workload: "tomcatv", CPUs: 99}, CodeInvalidRequest},
		{"scale out of range", JobRequest{Workload: "tomcatv", Scale: 100000}, CodeInvalidRequest},
		{"negative timeout", JobRequest{Workload: "tomcatv", TimeoutMS: -1}, CodeInvalidRequest},
		{"bad machine", JobRequest{Workload: "tomcatv", Machine: "cray"}, CodeInvalidRequest},
		{"bad variant", JobRequest{Workload: "tomcatv", Variant: "round-robin"}, CodeInvalidRequest},
		{"unknown workload", JobRequest{Workload: "linpack"}, CodeUnknownWorkload},
		{"unparsable program", JobRequest{Program: "array ("}, CodeBadProgram},
		{"unknown topology", JobRequest{Workload: "tomcatv", Topology: "mesh-9"}, CodeBadTopology},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			code := ts.do(t, "POST", "/v1/jobs", tc.req, &er)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if er.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (%s)", er.Error.Code, tc.wantCode, er.Error.Message)
			}
		})
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.url("/v1/jobs"), "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	req := fastReq()
	req.Variant = "cdpc"
	id := ts.submit(t, req)
	st := ts.await(t, id, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("state %s, want done (err: %+v)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.WallCycles == 0 {
		t.Fatalf("missing result: %+v", st)
	}
	if st.Result.Policy != "cdpc" {
		t.Errorf("policy %q, want cdpc", st.Result.Policy)
	}
	if st.Request == nil || st.Request.Variant != "cdpc" {
		t.Errorf("request not echoed: %+v", st.Request)
	}
	if st.Started == nil || st.Finished == nil {
		t.Errorf("timestamps missing: %+v", st)
	}

	// The job list contains it.
	var list JobList
	ts.do(t, "GET", "/v1/jobs", nil, &list)
	found := false
	for _, j := range list.Jobs {
		if j.ID == id {
			found = true
		}
	}
	if !found {
		t.Errorf("job %s missing from list", id)
	}
}

func TestConcurrentSubmissionsHitMemoCache(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 4, QueueCapacity: 64})
	// 24 concurrent submissions over 3 unique specs: 3 simulations, 21
	// cache hits (coalesced or memoized).
	uniq := []JobRequest{
		{Workload: "tomcatv", CPUs: 1, Scale: 64},
		{Workload: "tomcatv", CPUs: 2, Scale: 64},
		{Workload: "swim", CPUs: 1, Scale: 64},
	}
	var wg sync.WaitGroup
	ids := make([]string, 24)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = ts.submit(t, uniq[i%len(uniq)])
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if st := ts.await(t, id, 60*time.Second); st.State != StateDone {
			t.Fatalf("job %s: %s (%+v)", id, st.State, st.Error)
		}
	}
	hits, misses := ts.Scheduler().CacheStats()
	if misses != uint64(len(uniq)) {
		t.Errorf("misses = %d, want %d (one simulation per unique spec)", misses, len(uniq))
	}
	if hits != uint64(len(ids)-len(uniq)) {
		t.Errorf("hits = %d, want %d", hits, len(ids)-len(uniq))
	}
}

func TestQueueFullReturns429(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 1})
	// Fill the single worker and the single queue slot with slow jobs.
	running := ts.submit(t, slowReq())
	ts.awaitState(t, running, StateRunning, 10*time.Second)
	queued := ts.submit(t, slowReq())

	req := slowReq()
	req.CPUs = 8 // distinct spec so a memo hit can't race the rejection
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.url("/v1/jobs"), "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeQueueFull {
		t.Errorf("code %q, want %q", er.Error.Code, CodeQueueFull)
	}

	// Accepted jobs are never dropped: both complete.
	for _, id := range []string{running, queued} {
		if st := ts.await(t, id, 60*time.Second); st.State != StateDone {
			t.Fatalf("accepted job %s ended %s", id, st.State)
		}
	}
	// The rejected submission left no job record behind.
	var list JobList
	ts.do(t, "GET", "/v1/jobs", nil, &list)
	if len(list.Jobs) != 2 {
		t.Errorf("job list has %d entries, want 2", len(list.Jobs))
	}
}

func TestCancelQueuedJob(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 4})
	running := ts.submit(t, slowReq())
	ts.awaitState(t, running, StateRunning, 10*time.Second)
	queued := ts.submit(t, fastReq())

	var st JobStatus
	if code := ts.do(t, "DELETE", "/v1/jobs/"+queued, nil, &st); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if st.Error == nil || st.Error.Code != CodeCanceled {
		t.Fatalf("error %+v, want code canceled", st.Error)
	}
	if got := ts.await(t, running, 60*time.Second); got.State != StateDone {
		t.Fatalf("running job ended %s", got.State)
	}
}

func TestCancelRunningJobFreesWorker(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 4})
	// A paper-scale run: seconds of simulation, far longer than the
	// test would tolerate un-canceled.
	long := JobRequest{Workload: "tomcatv", CPUs: 16, Scale: 2}
	id := ts.submit(t, long)
	ts.awaitState(t, id, StateRunning, 10*time.Second)

	start := time.Now()
	var st JobStatus
	ts.do(t, "DELETE", "/v1/jobs/"+id, nil, &st)
	st = ts.await(t, id, 15*time.Second)
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}

	// The worker must be free: a fast job completes promptly.
	fastID := ts.submit(t, fastReq())
	if got := ts.await(t, fastID, 30*time.Second); got.State != StateDone {
		t.Fatalf("follow-up job ended %s", got.State)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("cancel-and-reuse took %s; worker not freed promptly", elapsed)
	}
}

func TestJobTimeout(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	req := slowReq()
	req.TimeoutMS = 30 // far below the ~500ms the spec needs
	id := ts.submit(t, req)
	st := ts.await(t, id, 30*time.Second)
	if st.State != StateCanceled || st.Error == nil || st.Error.Code != CodeTimeout {
		t.Fatalf("want canceled/timeout, got %s / %+v", st.State, st.Error)
	}
}

func TestShutdownDrainsAcceptedJobs(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2, QueueCapacity: 16})
	var ids []string
	for i := 0; i < 4; i++ {
		req := fastReq()
		req.CPUs = 1 + i%2 // two unique specs
		ids = append(ids, ts.submit(t, req))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := ts.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		j := ts.store.get(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		if st := j.status(false); st.State != StateDone {
			t.Errorf("job %s ended %s after drain", id, st.State)
		}
	}

	// readyz now reports draining; new submissions are refused.
	resp, err := http.Get(ts.url("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz status %d, want 503", resp.StatusCode)
	}
	var er ErrorResponse
	if code := ts.do(t, "POST", "/v1/jobs", fastReq(), &er); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit status %d, want 503", code)
	} else if er.Error.Code != CodeShuttingDown {
		t.Errorf("post-drain code %q, want %q", er.Error.Code, CodeShuttingDown)
	}
}

func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	long := JobRequest{Workload: "tomcatv", CPUs: 16, Scale: 2}
	id := ts.submit(t, long)
	ts.awaitState(t, id, StateRunning, 10*time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := ts.Shutdown(ctx)
	if err == nil {
		t.Fatal("shutdown reported a clean drain despite the running job")
	}
	// The job must still reach a terminal state (canceled), not hang.
	j := ts.store.get(id)
	select {
	case <-j.done:
	case <-time.After(15 * time.Second):
		t.Fatal("job never reached a terminal state after forced shutdown")
	}
	if st := j.status(false); st.State != StateCanceled {
		t.Errorf("job ended %s, want canceled", st.State)
	}
}

func TestCustomProgramAndAttr(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	prog := `
program solver
array a elems=4096
array b elems=4096
phase main occurs=2
  nest sweep parallel iters=64 inner=32 work=4 sched=even
    load a outer=32
    store b outer=32
`
	// Custom programs run but bypass the memo cache.
	req := JobRequest{Program: prog, CPUs: 4, Scale: 64}
	var res JobResult
	if code := ts.do(t, "POST", "/v1/simulate", req, &res); code != http.StatusOK {
		t.Fatalf("custom program: status %d (%+v)", code, res)
	}
	if res.WallCycles == 0 {
		t.Fatal("custom program produced no cycles")
	}
	var res2 JobResult
	ts.do(t, "POST", "/v1/simulate", req, &res2)
	if res2.Cached {
		t.Error("custom program result claimed cached")
	}

	// Attr requests carry attribution and bypass the cache (PR 2 rule).
	areq := fastReq()
	areq.Attr = true
	var ares JobResult
	if code := ts.do(t, "POST", "/v1/simulate", areq, &ares); code != http.StatusOK {
		t.Fatalf("attr: status %d", code)
	}
	if ares.Attribution == nil || len(ares.Attribution.PerColorMisses) == 0 {
		t.Fatalf("attr result missing attribution: %+v", ares.Attribution)
	}
	if ares.Cached {
		t.Error("instrumented run claimed cached")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	ts.do(t, "POST", "/v1/simulate", fastReq(), nil)
	ts.do(t, "POST", "/v1/simulate", fastReq(), nil)

	resp, err := http.Get(ts.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"cdpcd_jobs_accepted_total 2",
		"cdpcd_jobs_completed_total 2",
		"cdpcd_queue_depth 0",
		"cdpcd_scheduler_cache_hits_total 1",
		"cdpcd_scheduler_cache_misses_total 1",
		`cdpcd_http_request_seconds_count{route="POST /v1/simulate"} 2`,
		`cdpcd_http_requests_total{route="POST /v1/simulate",code="200"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestNotFoundAndHealth(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	var er ErrorResponse
	if code := ts.do(t, "GET", "/v1/jobs/j999999", nil, &er); code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
	if er.Error.Code != CodeNotFound {
		t.Errorf("code %q, want %q", er.Error.Code, CodeNotFound)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.url(path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	var wr WorkloadsResponse
	if code := ts.do(t, "GET", "/v1/workloads", nil, &wr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(wr.Workloads) != 10 {
		t.Errorf("%d workloads, want 10", len(wr.Workloads))
	}
	if len(wr.Variants) != 10 || len(wr.Machines) != 2 {
		t.Errorf("variants=%d machines=%d, want 10/2", len(wr.Variants), len(wr.Machines))
	}
	if len(wr.Topologies) < 3 {
		t.Errorf("topologies=%v, want at least default, clustered-l3, sliced-llc4", wr.Topologies)
	}
}

// TestTopologyRequest runs a sliced-LLC job end to end: the topology
// name must reach the simulator (the result's machine string carries
// it) and must be part of the memo key (a default-topology run of the
// same spec is a distinct cache entry).
func TestTopologyRequest(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	req := fastReq()
	req.Topology = "sliced-llc4"
	var res JobResult
	if code := ts.do(t, "POST", "/v1/simulate", req, &res); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(res.Machine, "sliced-llc4") {
		t.Fatalf("machine %q does not carry the topology name", res.Machine)
	}
	if res.Cached {
		t.Fatal("first sliced run reported cached")
	}

	var def JobResult
	if code := ts.do(t, "POST", "/v1/simulate", fastReq(), &def); code != http.StatusOK {
		t.Fatalf("default-topology status %d", code)
	}
	if def.Cached {
		t.Fatal("default-topology run was served the sliced entry: topology missing from memo key")
	}
	if def.WallCycles == res.WallCycles {
		t.Errorf("sliced and default runs report identical wall cycles (%d); topology likely not applied", res.WallCycles)
	}
}
