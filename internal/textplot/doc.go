// Package textplot renders the experiment output: fixed-width tables and
// horizontal ASCII bar charts standing in for the paper's figures
// (the grouped miss-breakdown bars of Figures 2 and 6–9).
package textplot
