package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("a", 1)
	tb.Row("longer-name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	// All rows share the same width.
	w := len(lines[0])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("line %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("missing separator row")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("x")
	tb.Row(3.14159)
	tb.Row(float32(2.5))
	out := tb.String()
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Errorf("float64 not formatted to 2 places:\n%s", out)
	}
	if !strings.Contains(out, "2.50") {
		t.Errorf("float32 not formatted:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("Bar should clamp, got %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Error("degenerate bars should be empty")
	}
}

func TestStackedBar(t *testing.T) {
	segs := []Segment{{Glyph: 'A', Value: 5}, {Glyph: 'B', Value: 5}}
	got := StackedBar(segs, 10, 10)
	if got != "AAAAABBBBB" {
		t.Errorf("StackedBar = %q", got)
	}
	// Overflow clamps to width.
	if got := StackedBar([]Segment{{Glyph: 'X', Value: 100}}, 10, 10); len(got) != 10 {
		t.Errorf("StackedBar overflow = %q", got)
	}
	if StackedBar(segs, 0, 10) != "" {
		t.Error("zero max should yield empty bar")
	}
}

func TestBarChartSharedScale(t *testing.T) {
	c := NewBarChart(20)
	c.Add("small", "1", Segment{Glyph: '#', Value: 1})
	c.Add("big", "2", Segment{Glyph: '#', Value: 2})
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	small := strings.Count(lines[0], "#")
	big := strings.Count(lines[1], "#")
	if big != 20 {
		t.Errorf("largest bar = %d chars, want full width 20", big)
	}
	if small != 10 {
		t.Errorf("half-value bar = %d chars, want 10", small)
	}
	if !strings.HasSuffix(lines[0], "1") || !strings.HasSuffix(lines[1], "2") {
		t.Error("notes missing")
	}
}

func TestBarChartLabelAlignment(t *testing.T) {
	c := NewBarChart(8)
	c.Add("a", "", Segment{Glyph: '#', Value: 1})
	c.Add("abcdef", "", Segment{Glyph: '#', Value: 1})
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	if strings.Index(lines[0], "|") != strings.Index(lines[1], "|") {
		t.Errorf("bars not aligned:\n%s", c.String())
	}
}

func TestHeatmap(t *testing.T) {
	rows := [][]float64{
		{0, 1, 2, 4},
		{4, 0, 0, 0},
	}
	out := Heatmap([]string{"c0", "c1"}, rows, "")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "c0 ") || !strings.HasPrefix(lines[1], "c1 ") {
		t.Errorf("row labels missing:\n%s", out)
	}
	// Cells render between | |; width equals the column count.
	cells := lines[0][strings.Index(lines[0], "|")+1 : strings.LastIndex(lines[0], "|")]
	if len(cells) != 4 {
		t.Fatalf("cell width = %d, want 4: %q", len(cells), cells)
	}
	if cells[0] != ' ' {
		t.Errorf("zero cell should be blank, got %q", cells[0])
	}
	// Nonzero cells must never be blank, even tiny values.
	if cells[1] == ' ' {
		t.Error("nonzero cell rendered blank")
	}
	// The maximum renders the hottest glyph of the default ramp.
	if cells[3] != '@' {
		t.Errorf("max cell = %q, want '@'", cells[3])
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if out := Heatmap(nil, nil, ""); out != "" {
		t.Errorf("empty heatmap = %q, want empty", out)
	}
	// All-zero matrix renders blanks, not a divide-by-zero artifact.
	out := Heatmap([]string{"r"}, [][]float64{{0, 0}}, "")
	if !strings.Contains(out, "|  |") {
		t.Errorf("all-zero heatmap = %q", out)
	}
}
