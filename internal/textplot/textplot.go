package textplot

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v (floats with %.2f).
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders a single horizontal bar of the given value scaled so that
// maxValue occupies width characters.
func Bar(value, maxValue float64, width int) string {
	if maxValue <= 0 || value < 0 {
		return ""
	}
	n := int(value / maxValue * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// StackedBar renders segments (label rune, value) as one bar scaled to
// maxValue over width characters, e.g. "EEEEMMMKK".
func StackedBar(segments []Segment, maxValue float64, width int) string {
	if maxValue <= 0 {
		return ""
	}
	var b strings.Builder
	used := 0
	for _, s := range segments {
		n := int(s.Value / maxValue * float64(width))
		if used+n > width {
			n = width - used
		}
		if n < 0 {
			n = 0
		}
		b.WriteString(strings.Repeat(string(s.Glyph), n))
		used += n
	}
	return b.String()
}

// Segment is one component of a stacked bar.
type Segment struct {
	Glyph rune
	Value float64
}

// Heatmap renders a matrix as an intensity grid, one glyph per cell,
// linearly scaled so the matrix maximum maps to the last glyph of the
// ramp. Zero cells always use the first glyph. An empty glyphs string
// selects the default ten-step ramp. Each row is prefixed by its label.
func Heatmap(rowLabels []string, cells [][]float64, glyphs string) string {
	if glyphs == "" {
		glyphs = " .:-=+*#%@"
	}
	ramp := []rune(glyphs)
	max := 0.0
	for _, row := range cells {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, row := range cells {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%-*s |", labelW, label)
		for _, v := range row {
			g := 0
			if max > 0 && v > 0 {
				g = int(v / max * float64(len(ramp)-1))
				if g == 0 {
					g = 1 // nonzero cells never render as blank
				}
				if g >= len(ramp) {
					g = len(ramp) - 1
				}
			}
			b.WriteRune(ramp[g])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// BarChart renders labeled bars with a shared scale and the numeric
// value appended.
type BarChart struct {
	width int
	max   float64
	rows  []barRow
}

type barRow struct {
	label    string
	segments []Segment
	total    float64
	note     string
}

// NewBarChart creates a chart whose longest bar spans width characters.
func NewBarChart(width int) *BarChart { return &BarChart{width: width} }

// Add appends a stacked bar.
func (c *BarChart) Add(label string, note string, segments ...Segment) {
	total := 0.0
	for _, s := range segments {
		total += s.Value
	}
	if total > c.max {
		c.max = total
	}
	c.rows = append(c.rows, barRow{label: label, segments: segments, total: total, note: note})
}

// String renders the chart.
func (c *BarChart) String() string {
	labelW := 0
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	var b strings.Builder
	for _, r := range c.rows {
		fmt.Fprintf(&b, "%-*s |%-*s| %s\n", labelW, r.label,
			c.width, StackedBar(r.segments, c.max, c.width), r.note)
	}
	return b.String()
}
