package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

const pageSize = 4096

func space(policy Policy, frames, colors int) *AddressSpace {
	return NewAddressSpace(pageSize, memory.New(frames, colors), policy)
}

func TestPageColoringConsecutivePages(t *testing.T) {
	as := space(PageColoring{Colors: 8}, 64, 8)
	for vpn := uint64(0); vpn < 16; vpn++ {
		_, faulted, err := as.Translate(vpn*pageSize, 0)
		if err != nil || !faulted {
			t.Fatalf("vpn %d: faulted=%v err=%v", vpn, faulted, err)
		}
		color, _ := as.ColorOf(vpn)
		if color != int(vpn%8) {
			t.Errorf("vpn %d color = %d, want %d", vpn, color, vpn%8)
		}
	}
}

func TestPageColoringConflictSpacing(t *testing.T) {
	// §2.1: under page coloring, conflicts occur only between pages whose
	// virtual addresses differ by a multiple of the cache span.
	p := PageColoring{Colors: 16}
	for vpn := uint64(0); vpn < 100; vpn++ {
		if p.PreferredColor(vpn, 0) != p.PreferredColor(vpn+16, 0) {
			t.Errorf("vpn %d and vpn+16 should share a color", vpn)
		}
	}
}

func TestBinHoppingCyclesInFaultOrder(t *testing.T) {
	as := space(&BinHopping{Colors: 4}, 64, 4)
	// Fault pages in a scattered order; colors must follow fault order,
	// not address order.
	order := []uint64{10, 3, 77, 4, 1}
	for i, vpn := range order {
		as.Translate(vpn*pageSize, 0)
		color, _ := as.ColorOf(vpn)
		if color != i%4 {
			t.Errorf("fault #%d (vpn %d) color = %d, want %d", i, vpn, color, i%4)
		}
	}
}

func TestTranslateIsStable(t *testing.T) {
	as := space(PageColoring{Colors: 8}, 64, 8)
	p1, faulted1, _ := as.Translate(5*pageSize+100, 0)
	p2, faulted2, _ := as.Translate(5*pageSize+200, 1)
	if !faulted1 || faulted2 {
		t.Errorf("fault flags = %v,%v; want true,false", faulted1, faulted2)
	}
	if p1-100 != p2-200 {
		t.Error("same page translated to different frames")
	}
	if as.Faults != 1 {
		t.Errorf("Faults = %d, want 1", as.Faults)
	}
}

func TestOffsetPreserved(t *testing.T) {
	as := space(PageColoring{Colors: 8}, 64, 8)
	f := func(vaddr uint64) bool {
		vaddr %= 64 * pageSize
		paddr, _, err := as.Translate(vaddr, 0)
		return err == nil && paddr%pageSize == vaddr%pageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdviseOverridesPolicy(t *testing.T) {
	as := space(PageColoring{Colors: 8}, 64, 8)
	as.Advise(map[uint64]int{3: 7}) // vpn 3 would naturally get color 3
	as.Translate(3*pageSize, 0)
	color, _ := as.ColorOf(3)
	if color != 7 {
		t.Errorf("hinted color = %d, want 7", color)
	}
	if as.HintedFaults != 1 || as.HonoredHints != 1 {
		t.Errorf("hint counters = %d/%d, want 1/1", as.HintedFaults, as.HonoredHints)
	}
}

func TestHintIsOnlyAHint(t *testing.T) {
	// Exhaust color 2, then hint for it: the fault must still succeed
	// (memory pressure fallback) but the hint goes unhonored (§5 step 3).
	as := space(PageColoring{Colors: 4}, 8, 4) // 2 frames per color
	as.Advise(map[uint64]int{100: 2, 101: 2, 102: 2})
	for _, vpn := range []uint64{100, 101, 102} {
		if _, _, err := as.Translate(vpn*pageSize, 0); err != nil {
			t.Fatal(err)
		}
	}
	c100, _ := as.ColorOf(100)
	c101, _ := as.ColorOf(101)
	c102, _ := as.ColorOf(102)
	if c100 != 2 || c101 != 2 {
		t.Errorf("first two hinted pages: colors %d,%d, want 2,2", c100, c101)
	}
	if c102 == 2 {
		t.Error("third hinted page got color 2, pool should be empty")
	}
	if as.HonoredHints != 2 {
		t.Errorf("HonoredHints = %d, want 2", as.HonoredHints)
	}
}

func TestHintsDoNotAffectMappedPages(t *testing.T) {
	as := space(PageColoring{Colors: 8}, 64, 8)
	as.Translate(0, 0)
	before, _ := as.ColorOf(0)
	as.Advise(map[uint64]int{0: (before + 1) % 8})
	after, _ := as.ColorOf(0)
	if before != after {
		t.Error("Advise recolored an already-mapped page")
	}
}

func TestTouchInOrderEmulatesColoringOnBinHopping(t *testing.T) {
	// The paper's Digital UNIX trick: with bin hopping, touching pages in
	// ascending VPN order yields page coloring's assignment.
	as := space(&BinHopping{Colors: 8}, 64, 8)
	vpns := make([]uint64, 16)
	for i := range vpns {
		vpns[i] = uint64(i)
	}
	faults, err := as.TouchInOrder(vpns, 0)
	if err != nil || faults != 16 {
		t.Fatalf("TouchInOrder = (%d,%v)", faults, err)
	}
	for vpn := uint64(0); vpn < 16; vpn++ {
		color, _ := as.ColorOf(vpn)
		if color != int(vpn%8) {
			t.Errorf("vpn %d color = %d, want %d", vpn, color, vpn%8)
		}
	}
	// Re-touching faults nothing.
	faults, _ = as.TouchInOrder(vpns, 0)
	if faults != 0 {
		t.Errorf("second TouchInOrder faulted %d pages, want 0", faults)
	}
}

func TestOutOfMemorySurfaceError(t *testing.T) {
	as := space(PageColoring{Colors: 2}, 2, 2)
	as.Translate(0, 0)
	as.Translate(pageSize, 0)
	if _, _, err := as.Translate(2*pageSize, 0); err == nil {
		t.Error("expected out-of-memory error")
	}
}

func TestColorOfUnmapped(t *testing.T) {
	as := space(PageColoring{Colors: 8}, 64, 8)
	if _, ok := as.ColorOf(42); ok {
		t.Error("ColorOf reported a color for an unmapped page")
	}
}

func TestMappedPagesCount(t *testing.T) {
	as := space(PageColoring{Colors: 8}, 64, 8)
	for vpn := uint64(0); vpn < 10; vpn++ {
		as.Touch(vpn, 0)
	}
	if as.MappedPages() != 10 {
		t.Errorf("MappedPages = %d, want 10", as.MappedPages())
	}
}

func TestPolicyNames(t *testing.T) {
	if (PageColoring{}).Name() != "page-coloring" {
		t.Error("PageColoring name")
	}
	if (&BinHopping{}).Name() != "bin-hopping" {
		t.Error("BinHopping name")
	}
}
