package vm

import (
	"testing"

	"repro/internal/memory"
)

func recolorSpace() (*AddressSpace, *Recolorer) {
	as := space(PageColoring{Colors: 4}, 64, 4)
	return as, NewRecolorer(as, 2, RecolorPolicy{MissThreshold: 4, MaxRecolorings: 2})
}

func TestRecolorMovesPage(t *testing.T) {
	as, _ := recolorSpace()
	as.Translate(0, 0)
	before, _ := as.ColorOf(0)
	if err := as.Recolor(0, (before+2)%4); err != nil {
		t.Fatal(err)
	}
	after, _ := as.ColorOf(0)
	if after != (before+2)%4 {
		t.Errorf("color after recolor = %d, want %d", after, (before+2)%4)
	}
	// Translation still works and reverse map follows.
	paddr, faulted, err := as.Translate(100, 0)
	if err != nil || faulted {
		t.Fatalf("translate after recolor: %v %v", faulted, err)
	}
	if va, ok := as.ReverseVAddr(paddr); !ok || va != 100 {
		t.Errorf("reverse map broken after recolor: %d %v", va, ok)
	}
}

func TestRecolorUnmappedFails(t *testing.T) {
	as, _ := recolorSpace()
	if err := as.Recolor(42, 1); err == nil {
		t.Error("recolor of unmapped page accepted")
	}
}

func TestRecolorReleasesOldFrame(t *testing.T) {
	alloc := memory.New(8, 4)
	as := NewAddressSpace(4096, alloc, PageColoring{Colors: 4})
	as.Translate(0, 0)
	free := alloc.FreeFrames()
	if err := as.Recolor(0, 3); err != nil {
		t.Fatal(err)
	}
	if alloc.FreeFrames() != free {
		t.Errorf("free frames = %d, want %d (old frame must be released)", alloc.FreeFrames(), free)
	}
}

func TestObserveMissTriggersAtThreshold(t *testing.T) {
	as, r := recolorSpace()
	as.Translate(0, 0)
	for i := 0; i < 3; i++ {
		ev, err := r.ObserveMiss(0, 0)
		if err != nil || ev != nil {
			t.Fatalf("miss %d: premature recoloring %v %v", i, ev, err)
		}
	}
	ev, err := r.ObserveMiss(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("threshold crossed but no recoloring")
	}
	if ev.VPN != 0 || ev.OldColor == ev.NewColor {
		t.Errorf("event = %+v", ev)
	}
	if r.Recolorings != 1 {
		t.Errorf("Recolorings = %d", r.Recolorings)
	}
}

func TestObserveMissPicksColdestColor(t *testing.T) {
	as, r := recolorSpace()
	// Map pages on colors 0 and 1 and heat them; color 2/3 stay cold.
	as.Translate(0*4096, 0) // color 0
	as.Translate(1*4096, 0) // color 1
	for i := 0; i < 3; i++ {
		r.ObserveMiss(0, 0)
		r.ObserveMiss(0, 4096)
	}
	ev, _ := r.ObserveMiss(0, 0) // 4th miss on page 0 triggers
	if ev == nil {
		t.Fatal("no recoloring")
	}
	if ev.NewColor == 0 || ev.NewColor == 1 {
		t.Errorf("moved to hot color %d, want a cold one", ev.NewColor)
	}
}

func TestPingPongGuard(t *testing.T) {
	as, r := recolorSpace()
	as.Translate(0, 0)
	moved := 0
	for i := 0; i < 40; i++ {
		ev, err := r.ObserveMiss(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			moved++
		}
	}
	if moved > 2 {
		t.Errorf("page moved %d times, guard allows 2", moved)
	}
	if r.Suppressed == 0 {
		t.Error("guard never engaged")
	}
}

func TestObserveMissUnmappedIsNoop(t *testing.T) {
	_, r := recolorSpace()
	ev, err := r.ObserveMiss(0, 999*4096)
	if err != nil || ev != nil {
		t.Errorf("unmapped miss produced %v %v", ev, err)
	}
}

func TestZeroPolicyGetsDefaults(t *testing.T) {
	as, _ := recolorSpace()
	r := NewRecolorer(as, 1, RecolorPolicy{})
	if r.policy.MissThreshold == 0 {
		t.Error("zero policy not defaulted")
	}
}
