package vm

import (
	"fmt"

	"repro/internal/memory"
)

// Policy chooses a preferred page color at fault time. Implementations
// must be deterministic given the fault sequence they observe; the
// bin-hopping "race" between concurrently faulting CPUs is reproduced by
// the simulator's event interleaving, which determines fault order.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// PreferredColor returns the color to request for vpn faulted by cpu.
	PreferredColor(vpn uint64, cpu int) int
}

// PageColoring maps consecutive virtual pages to consecutive colors, so
// conflicts occur only between pages whose virtual addresses differ by a
// multiple of the cache-set span (IRIX, Windows NT).
type PageColoring struct {
	Colors int
}

// Name implements Policy.
func (PageColoring) Name() string { return "page-coloring" }

// PreferredColor implements Policy.
func (p PageColoring) PreferredColor(vpn uint64, _ int) int {
	return int(vpn % uint64(p.Colors))
}

// FirstTouch models the unmodified-OS baseline the paper compares
// against (§2): no color preference at all — the faulting page gets
// whatever frame heads the free list. The policy asks the allocator
// which color a sequential free list would serve next, so the
// preference is always satisfiable and placement is entirely driven by
// allocation order and memory pressure, including frames freed by
// other processes. Pid scopes the prediction to the owning process's
// color partition under isolation domains; pid 0 (the single-process
// legacy owner) on an unpartitioned allocator degenerates to the global
// free-list head.
type FirstTouch struct {
	Alloc *memory.Allocator
	Pid   int
}

// Name implements Policy.
func (FirstTouch) Name() string { return "first-touch" }

// PreferredColor implements Policy.
func (p FirstTouch) PreferredColor(uint64, int) int { return p.Alloc.FirstTouchColorFor(p.Pid) }

// BinHopping cycles through colors in the order page faults occur,
// exploiting temporal locality (Digital UNIX). The single shared counter
// is what makes the policy non-deterministic on a real multiprocessor:
// concurrent faults race for the next bin. Here fault order is the
// simulator's deterministic event order, which plays the same role.
type BinHopping struct {
	Colors int
	next   int
}

// Name implements Policy.
func (*BinHopping) Name() string { return "bin-hopping" }

// PreferredColor implements Policy.
func (b *BinHopping) PreferredColor(uint64, int) int {
	c := b.next
	b.next = (b.next + 1) % b.Colors
	return c
}

// AddressSpace is one application's virtual address space: a page table
// filled lazily by page faults, a mapping policy, and an optional hint
// table installed through the Advise call (the paper's single-system-call
// interface, §5.3).
type AddressSpace struct {
	pid       int // owning process id (0 for single-process machines)
	pageSize  uint64
	pageShift uint   // log2(pageSize); page size is a validated power of two
	pageMask  uint64 // pageSize - 1
	alloc     *memory.Allocator
	policy    Policy

	pages  map[uint64]uint64 // vpn -> frame
	frames map[uint64]uint64 // frame -> vpn (reverse map for cache invalidation)
	hints  map[uint64]int    // vpn -> preferred color
	occ    []int             // mapped pages per color (recoloring heuristics)

	// Statistics.
	Faults       uint64 // total page faults taken
	HintedFaults uint64 // faults whose vpn had a CDPC hint
	HonoredHints uint64 // hinted faults that got the hinted color

	// OnFault, when non-nil, observes every serviced page fault: the
	// owning process id, the faulting vpn and cpu, the granted frame's
	// color, and whether the fault was hinted and the hint honored. The
	// simulator's observability layer hooks it; the callback must not
	// mutate the address space.
	OnFault func(pid int, vpn uint64, cpu, color int, hinted, honored bool)
}

// NewAddressSpace creates an empty address space backed by alloc, owned
// by process 0 (the single-process legacy owner).
func NewAddressSpace(pageSize int, alloc *memory.Allocator, policy Policy) *AddressSpace {
	return NewAddressSpaceProc(0, pageSize, alloc, policy)
}

// NewAddressSpaceProc creates an empty address space owned by process
// pid. Every frame the space faults in is charged to pid in the
// allocator's ownership accounting, so process exit can return exactly
// the frames the process held.
func NewAddressSpaceProc(pid, pageSize int, alloc *memory.Allocator, policy Policy) *AddressSpace {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("vm: bad page size %d", pageSize))
	}
	shift := uint(0)
	for 1<<shift < pageSize {
		shift++
	}
	return &AddressSpace{
		pid:       pid,
		pageSize:  uint64(pageSize),
		pageShift: shift,
		pageMask:  uint64(pageSize - 1),
		alloc:     alloc,
		policy:    policy,
		pages:     make(map[uint64]uint64),
		frames:    make(map[uint64]uint64),
		hints:     make(map[uint64]int),
		occ:       make([]int, alloc.NumColors()),
	}
}

// PageSize returns the page size in bytes.
func (as *AddressSpace) PageSize() int { return int(as.pageSize) }

// Pid returns the owning process id.
func (as *AddressSpace) Pid() int { return as.pid }

// PolicyName returns the active mapping policy's name.
func (as *AddressSpace) PolicyName() string { return as.policy.Name() }

// VPN returns the virtual page number of vaddr.
func (as *AddressSpace) VPN(vaddr uint64) uint64 { return vaddr >> as.pageShift }

// Advise installs preferred colors for a set of virtual pages. It mirrors
// the paper's madvise extension: hints are suggestions consulted at fault
// time; pages already mapped are unaffected.
func (as *AddressSpace) Advise(hints map[uint64]int) {
	for vpn, color := range hints {
		as.hints[vpn] = color
	}
}

// Translate returns the physical address for vaddr, taking a page fault
// (and allocating a frame) if the page is unmapped. faulted reports
// whether a fault occurred, so the caller can charge kernel time.
func (as *AddressSpace) Translate(vaddr uint64, cpu int) (paddr uint64, faulted bool, err error) {
	vpn := vaddr >> as.pageShift
	frame, ok := as.pages[vpn]
	if !ok {
		frame, err = as.fault(vpn, cpu)
		if err != nil {
			return 0, true, err
		}
		faulted = true
	}
	return frame<<as.pageShift + vaddr&as.pageMask, faulted, nil
}

// TranslateVPN returns the physical base address of vpn's frame, taking
// a page fault if unmapped. The simulator's per-CPU translation caches
// are built on this: one page-table lookup services every subsequent
// reference to the page until the cached entry is invalidated.
func (as *AddressSpace) TranslateVPN(vpn uint64, cpu int) (pbase uint64, faulted bool, err error) {
	frame, ok := as.pages[vpn]
	if !ok {
		frame, err = as.fault(vpn, cpu)
		if err != nil {
			return 0, true, err
		}
		faulted = true
	}
	return frame << as.pageShift, faulted, nil
}

// fault services a page fault for vpn.
func (as *AddressSpace) fault(vpn uint64, cpu int) (uint64, error) {
	as.Faults++
	var preferred int
	_, hinted := as.hints[vpn]
	if hinted {
		as.HintedFaults++
		preferred = as.hints[vpn]
	} else {
		preferred = as.policy.PreferredColor(vpn, cpu)
	}
	frame, honored, err := as.alloc.AllocFor(as.pid, preferred)
	if err != nil {
		return 0, fmt.Errorf("vm: fault on vpn %d: %w", vpn, err)
	}
	if hinted && honored {
		as.HonoredHints++
	}
	as.pages[vpn] = frame
	as.frames[frame] = vpn
	color := as.alloc.ColorOf(frame)
	as.occ[color]++
	if as.OnFault != nil {
		as.OnFault(as.pid, vpn, cpu, color, hinted, hinted && honored)
	}
	return frame, nil
}

// Occupancy returns the number of mapped pages of the given color.
func (as *AddressSpace) Occupancy(color int) int {
	return as.occ[memory.NormColor(color, len(as.occ))]
}

// ColorOccupancy returns a copy of the mapped-pages-per-color table.
func (as *AddressSpace) ColorOccupancy() []int {
	out := make([]int, len(as.occ))
	copy(out, as.occ)
	return out
}

// TranslateNoFault translates vaddr without taking a page fault; ok is
// false when the page is unmapped. Software prefetches use this path:
// a prefetch to an unmapped page is dropped, never faulted (§6.2).
func (as *AddressSpace) TranslateNoFault(vaddr uint64) (paddr uint64, ok bool) {
	frame, ok := as.pages[vaddr>>as.pageShift]
	if !ok {
		return 0, false
	}
	return frame<<as.pageShift + vaddr&as.pageMask, true
}

// ReverseVAddr maps a physical address back to the virtual address of
// the same byte; ok is false for frames this address space does not own.
// The simulator uses it to mirror external-cache invalidations into the
// virtually indexed on-chip caches.
func (as *AddressSpace) ReverseVAddr(paddr uint64) (vaddr uint64, ok bool) {
	vpn, ok := as.frames[paddr>>as.pageShift]
	if !ok {
		return 0, false
	}
	return vpn<<as.pageShift + paddr&as.pageMask, true
}

// Touch faults vpn in if needed; used by the touch-order emulation and by
// warm-up code. It reports whether a fault occurred.
func (as *AddressSpace) Touch(vpn uint64, cpu int) (bool, error) {
	if _, ok := as.pages[vpn]; ok {
		return false, nil
	}
	_, err := as.fault(vpn, cpu)
	return true, err
}

// TouchInOrder faults the given pages in sequence. Combined with a
// BinHopping policy this reproduces the paper's Digital UNIX
// implementation of both page coloring and CDPC: "selectively touch the
// pages in a specific order that will generate the desired mapping"
// (§5.3). The serialization cost (all faults up front, on one CPU) is the
// drawback the paper notes; the caller charges it.
func (as *AddressSpace) TouchInOrder(vpns []uint64, cpu int) (faults int, err error) {
	for _, vpn := range vpns {
		faulted, err := as.Touch(vpn, cpu)
		if err != nil {
			return faults, err
		}
		if faulted {
			faults++
		}
	}
	return faults, nil
}

// Mapped reports whether vpn has a frame.
func (as *AddressSpace) Mapped(vpn uint64) bool {
	_, ok := as.pages[vpn]
	return ok
}

// ColorOf returns the color of vpn's frame; ok is false if unmapped.
func (as *AddressSpace) ColorOf(vpn uint64) (int, bool) {
	frame, mapped := as.pages[vpn]
	if !mapped {
		return 0, false
	}
	return as.alloc.ColorOf(frame), true
}

// MappedPages returns the number of resident pages.
func (as *AddressSpace) MappedPages() int { return len(as.pages) }

// HintCount returns the number of installed hints.
func (as *AddressSpace) HintCount() int { return len(as.hints) }
