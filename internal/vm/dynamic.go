package vm

import "fmt"

// Dynamic page recoloring, the alternative the paper discusses and
// dismisses for multiprocessors (§2.1/§2.2): the OS detects conflicting
// pages with per-page miss counters (standing in for a cache-miss
// lookaside buffer or TLB-state sampling) and recolors a page by copying
// it to a frame of a less loaded color. "To our knowledge, the
// performance of dynamic policies for multiprocessors has not been
// studied" — this implementation lets the repository study exactly that,
// including the costs the paper predicts make it unattractive: the copy,
// the per-processor TLB shootdowns, and the inter-processor
// communication of the detection and recoloring operations.

// RecolorPolicy decides when a page is recolored and where it goes.
type RecolorPolicy struct {
	// MissThreshold is the number of misses attributed to a page within
	// one observation window before it is considered conflicting.
	MissThreshold uint32
	// MaxRecolorings bounds recoloring of a single page (ping-pong guard).
	MaxRecolorings uint8
}

// DefaultRecolorPolicy mirrors the literature's settings: react after a
// burst of misses, and never move the same page more than a few times.
func DefaultRecolorPolicy() RecolorPolicy {
	return RecolorPolicy{MissThreshold: 64, MaxRecolorings: 4}
}

// pageHeat tracks the detection state of one resident page.
type pageHeat struct {
	misses      uint32
	recolorings uint8
}

// Recolorer implements the dynamic policy over an AddressSpace. The
// simulator reports external-cache misses to it; when a page crosses the
// threshold, the Recolorer picks the color with the least observed load,
// moves the page, and reports the costs for the simulator to charge.
type Recolorer struct {
	as     *AddressSpace
	policy RecolorPolicy

	heat map[uint64]*pageHeat // vpn -> detection state
	// colorLoad[cpu][color] counts misses each processor observed per
	// color: each processor has its own external cache, so conflict
	// pressure is a per-processor property (the paper's point that MP
	// detection is harder than uniprocessor detection, §2.1).
	colorLoad [][]uint64

	// Statistics.
	Recolorings uint64
	Suppressed  uint64 // recolorings skipped by the ping-pong guard
}

// NewRecolorer attaches a dynamic recoloring policy to an address space
// shared by ncpu processors.
func NewRecolorer(as *AddressSpace, ncpu int, policy RecolorPolicy) *Recolorer {
	if policy.MissThreshold == 0 {
		policy = DefaultRecolorPolicy()
	}
	if ncpu < 1 {
		ncpu = 1
	}
	load := make([][]uint64, ncpu)
	for i := range load {
		load[i] = make([]uint64, as.alloc.NumColors())
	}
	return &Recolorer{
		as:        as,
		policy:    policy,
		heat:      make(map[uint64]*pageHeat),
		colorLoad: load,
	}
}

// RecolorEvent describes one recoloring for the simulator to charge.
type RecolorEvent struct {
	VPN      uint64
	OldColor int
	NewColor int
	// PageBytes must be copied; every CPU's TLB entry for the page must
	// be shot down; the paper notes both costs are larger on MPs (§2.1).
	PageBytes int
}

// ObserveMiss records an external-cache miss by cpu on vaddr and, if
// the page has crossed the conflict threshold, recolors it. The returned
// event is non-nil when a recoloring happened.
func (r *Recolorer) ObserveMiss(cpu int, vaddr uint64) (*RecolorEvent, error) {
	if cpu < 0 || cpu >= len(r.colorLoad) {
		cpu = 0
	}
	vpn := r.as.VPN(vaddr)
	color, mapped := r.as.ColorOf(vpn)
	if !mapped {
		return nil, nil
	}
	r.colorLoad[cpu][color]++
	h := r.heat[vpn]
	if h == nil {
		h = &pageHeat{}
		r.heat[vpn] = h
	}
	h.misses++
	if h.misses < r.policy.MissThreshold {
		return nil, nil
	}
	h.misses = 0
	if h.recolorings >= r.policy.MaxRecolorings {
		r.Suppressed++
		return nil, nil
	}

	newColor := r.coldestColor(cpu)
	if newColor == color {
		return nil, nil
	}
	if err := r.as.Recolor(vpn, newColor); err != nil {
		return nil, err
	}
	// Transfer the page's heat to its new color so successive hot pages
	// spread across this processor's cold colors instead of piling onto
	// one.
	r.colorLoad[cpu][newColor] += uint64(r.policy.MissThreshold)
	h.recolorings++
	r.Recolorings++
	return &RecolorEvent{
		VPN:       vpn,
		OldColor:  color,
		NewColor:  newColor,
		PageBytes: r.as.PageSize(),
	}, nil
}

// coldestColor returns the color with the least miss load observed by
// cpu's cache, breaking ties toward colors with fewer mapped pages — a
// zero-load color may simply hold a page that is caching well, and
// moving a hot page onto it would create a fresh conflict.
func (r *Recolorer) coldestColor(cpu int) int {
	load := r.colorLoad[cpu]
	best := 0
	for c := 1; c < len(load); c++ {
		switch {
		case load[c] < load[best]:
			best = c
		case load[c] == load[best] && r.as.Occupancy(c) < r.as.Occupancy(best):
			best = c
		}
	}
	return best
}

// Recolor moves vpn to a frame of the given color, releasing the old
// frame. The caller (the OS, i.e. the simulator) is responsible for
// charging the copy, the TLB shootdowns, and invalidating cached lines
// of the old frame.
func (as *AddressSpace) Recolor(vpn uint64, color int) error {
	oldFrame, ok := as.pages[vpn]
	if !ok {
		return fmt.Errorf("vm: recolor of unmapped vpn %d", vpn)
	}
	newFrame, _, err := as.alloc.AllocFor(as.pid, color)
	if err != nil {
		return fmt.Errorf("vm: recolor vpn %d: %w", vpn, err)
	}
	delete(as.frames, oldFrame)
	as.alloc.Release(oldFrame)
	as.occ[as.alloc.ColorOf(oldFrame)]--
	as.pages[vpn] = newFrame
	as.frames[newFrame] = vpn
	as.occ[as.alloc.ColorOf(newFrame)]++
	return nil
}
