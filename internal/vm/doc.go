// Package vm implements the simulated operating system's virtual-memory
// subsystem: per-application address spaces, the page-fault path, and the
// page mapping policies the paper compares — page coloring (IRIX-style),
// bin hopping (Digital UNIX-style), and the madvise-like hint interface
// CDPC uses (§2.1, §5.3). It also provides the "touch pages in a chosen
// order on top of bin hopping" emulation the paper used on Digital UNIX.
package vm
