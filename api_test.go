package repro_test

import (
	"strings"
	"testing"

	repro "repro"
)

func TestFacadePipeline(t *testing.T) {
	meta, err := repro.WorkloadByName("hydro2d")
	if err != nil {
		t.Fatal(err)
	}
	machine := repro.BaseMachine(4, repro.DefaultScale)
	prog := meta.Build(repro.DefaultScale)
	sum, err := repro.Compile(prog, machine, repro.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Partitions) == 0 || len(sum.Groups) == 0 {
		t.Fatal("empty summary")
	}
	hints, err := repro.ComputeHints(prog, sum, machine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Simulate(prog, machine, repro.SimOptions{Policy: repro.PolicyPageColoring, Hints: hints})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles == 0 || res.HonoredHints == 0 {
		t.Errorf("suspicious result: wall=%d honored=%d", res.WallCycles, res.HonoredHints)
	}
}

func TestFacadeTouchOrderPath(t *testing.T) {
	meta, _ := repro.WorkloadByName("mgrid")
	machine := repro.BaseMachine(2, 32)
	prog := meta.Build(32)
	sum, err := repro.Compile(prog, machine, repro.CompileOptions{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	hints, err := repro.ComputeHints(prog, sum, machine)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Simulate(prog, machine, repro.SimOptions{
		Policy: repro.PolicyBinHopping, Hints: hints, TouchOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallCycles == 0 {
		t.Error("zero wall clock")
	}
}

func TestFacadeTextProgram(t *testing.T) {
	src := `
program tiny
array x elems=2048
array y elems=2048
phase go occurs=4
  nest sweep parallel iters=8 inner=256 work=4 sched=even
    load x outer=256
    store y outer=256
`
	prog, err := repro.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip through the formatter.
	if _, err := repro.ParseProgram(repro.FormatProgram(prog)); err != nil {
		t.Fatalf("format round trip: %v", err)
	}
	res, err := repro.RunProgram(prog, repro.Spec{CPUs: 4, Variant: repro.CDPC})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "tiny" || res.WallCycles == 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Policy != string(repro.CDPC) {
		t.Errorf("policy = %s", res.Policy)
	}
}

func TestFacadeParseError(t *testing.T) {
	_, err := repro.ParseProgram("program x\nbogus line\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-numbered error, got %v", err)
	}
}

func TestMachinePresets(t *testing.T) {
	base := repro.BaseMachine(8, 1)
	alpha := repro.AlphaMachine(8, 1)
	if base.Colors() != 256 {
		t.Errorf("base colors = %d, want 256", base.Colors())
	}
	if alpha.L2.Size != 4<<20 {
		t.Errorf("alpha L2 = %d, want 4MB", alpha.L2.Size)
	}
	if err := base.Validate(); err != nil {
		t.Error(err)
	}
	if err := alpha.Validate(); err != nil {
		t.Error(err)
	}
}
